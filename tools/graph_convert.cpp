// graph_convert: turn edge-list text files (with or without our
// "num_vertices [weighted]" header — raw SNAP downloads work) into the
// binary CSR snapshot format, and inspect either format.
//
// Usage:
//   graph_convert <input.txt|input.bin> <output.bin>   convert to snapshot
//   graph_convert --info <input>                       print graph stats
//   graph_convert --stats <input>                      + snapshot layout and
//                                                        degree distribution
//   graph_convert --upgrade <snapshot.bin>             rewrite v2 as v3 in
//                                                        place
//   graph_convert --rmat <V> <E> <seed> <out.bin>      synthesize an R-MAT
//                                                        snapshot
//
// --stats adds the snapshot's format version and per-array file offsets
// (with their 64-byte-alignment status — the property the zero-copy mmap
// loader needs), plus the out- and in-degree percentiles (p50/p90/p99/max)
// — the numbers that pick a PGCH_MIRROR_DEGREE hub threshold or predict
// how skewed a range partition of the id space will be.
//
// --upgrade exists because only format v3 (64-byte-aligned arrays) can be
// loaded zero-copy: a v2 snapshot heap-loads fine but load_binary_mmap
// rejects it. The upgrade writes the v3 file next to the original,
// verifies the reloaded checksum, then renames it over the original —
// a crash mid-upgrade never leaves a corrupt snapshot behind.
//
// --rmat feeds CI and smoke tests that need a power-law v3 snapshot
// without the bench harness (the asan job builds with benches off).
//
// The output snapshot reloads via graph::load_binary / load_binary_mmap /
// graph::load_any; every example binary and the benches (PGCH_DATASET_*
// environment overrides) accept it. Format spec: DESIGN.md section 5.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void print_info(const char* label, const pregel::graph::CsrGraph& g) {
  std::uint32_t max_deg = 0;
  for (pregel::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    max_deg = std::max(max_deg, g.out_degree(u));
  }
  std::printf(
      "%s: %u vertices, %llu edges (%s), avg degree %.2f, max degree %u\n"
      "  checksum %016llx\n",
      label, g.num_vertices(),
      static_cast<unsigned long long>(g.num_edges()),
      g.is_weighted() ? "weighted" : "unweighted", g.avg_degree(), max_deg,
      static_cast<unsigned long long>(g.checksum()));
}

/// Degree value at percentile `pct` of a sorted ascending sample.
std::uint32_t percentile(const std::vector<std::uint32_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      std::min(sorted.size() - 1, sorted.size() * static_cast<std::size_t>(pct) / 100);
  return sorted[idx];
}

void print_degree_row(const char* label, std::vector<std::uint32_t> degrees) {
  std::sort(degrees.begin(), degrees.end());
  std::printf("  %s degree: p50 %u, p90 %u, p99 %u, max %u\n", label,
              percentile(degrees, 50), percentile(degrees, 90),
              percentile(degrees, 99),
              degrees.empty() ? 0u : degrees.back());
}

/// The degree-distribution summary --stats adds: out- and in-degree
/// percentiles, the input to picking PGCH_MIRROR_DEGREE (mirror only the
/// hubs, e.g. everything at/above p99) and to judging partition skew.
void print_stats(const pregel::graph::CsrGraph& g) {
  const pregel::graph::VertexId n = g.num_vertices();
  std::vector<std::uint32_t> out_deg(n, 0), in_deg(n, 0);
  for (pregel::graph::VertexId u = 0; u < n; ++u) {
    out_deg[u] = g.out_degree(u);
    for (const pregel::graph::VertexId v : g.neighbors(u)) ++in_deg[v];
  }
  print_degree_row("out", std::move(out_deg));
  print_degree_row("in", std::move(in_deg));
}

void print_array_offset(const char* name, std::uint64_t off) {
  std::printf("    %-7s at %10llu (%s)\n", name,
              static_cast<unsigned long long>(off),
              off % 64 == 0 ? "64-byte aligned" : "UNALIGNED");
}

/// Snapshot-layout summary --stats adds for binary inputs: the format
/// version and each array's file offset with its alignment status (the
/// mmap loader needs v3's 64-byte alignment; v2 prints as unaligned,
/// which is the cue to run --upgrade).
void print_snapshot_layout(const std::string& path) {
  const auto info = pregel::graph::snapshot_info(path);
  if (!info) {
    std::printf("  snapshot: not a binary snapshot (text edge list)\n");
    return;
  }
  std::printf("  snapshot: format v%u (%s)\n", info->version,
              info->version >= 3 ? "mmap-capable"
                                 : "heap-only — run --upgrade for mmap");
  print_array_offset("offsets", info->offsets_off);
  print_array_offset("dst", info->dst_off);
  if (info->weighted) print_array_offset("weights", info->weights_off);
}

/// Rewrite a v2 snapshot as v3 next to the original and rename over it.
/// The reloaded checksum is compared before the rename, so an interrupted
/// or failed upgrade leaves the original untouched.
int upgrade(const std::string& path) {
  const auto info = pregel::graph::snapshot_info(path);
  if (!info) {
    std::fprintf(stderr, "graph_convert: %s is not a binary snapshot\n",
                 path.c_str());
    return 1;
  }
  if (info->version >= 3) {
    std::printf("%s is already format v%u — nothing to do\n", path.c_str(),
                info->version);
    return 0;
  }
  const auto t0 = Clock::now();
  const auto g = pregel::graph::load_binary(path);
  const std::string tmp = path + ".v3.tmp";
  pregel::graph::save_binary(g, tmp);
  const auto back = pregel::graph::load_binary_mmap(tmp);
  if (back.checksum() != g.checksum()) {
    std::remove(tmp.c_str());
    std::fprintf(stderr, "graph_convert: upgrade verification FAILED\n");
    return 1;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::fprintf(stderr, "graph_convert: cannot rename %s over %s\n",
                 tmp.c_str(), path.c_str());
    return 1;
  }
  std::printf("upgraded %s: v%u -> v3 in %.1f ms (checksum %016llx)\n",
              path.c_str(), info->version, ms_since(t0),
              static_cast<unsigned long long>(g.checksum()));
  return 0;
}

/// Deterministic R-MAT snapshot straight to disk (CI smoke input).
int make_rmat(const char* n_str, const char* m_str, const char* seed_str,
              const std::string& out) {
  pregel::graph::RmatOptions opts;
  opts.num_vertices =
      static_cast<pregel::graph::VertexId>(std::strtoull(n_str, nullptr, 10));
  opts.num_edges = std::strtoull(m_str, nullptr, 10);
  opts.seed = std::strtoull(seed_str, nullptr, 10);
  if (opts.num_vertices == 0 || opts.num_edges == 0) {
    std::fprintf(stderr, "graph_convert: --rmat needs V > 0 and E > 0\n");
    return 2;
  }
  const auto t0 = Clock::now();
  const auto g = pregel::graph::rmat(opts).finalize();
  print_info("rmat", g);
  pregel::graph::save_binary(g, out);
  std::printf("wrote snapshot %s in %.1f ms\n", out.c_str(), ms_since(t0));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: graph_convert <input.txt|input.bin> <output.bin>\n"
               "       graph_convert --info <input>\n"
               "       graph_convert --stats <input>\n"
               "       graph_convert --upgrade <snapshot.bin>\n"
               "       graph_convert --rmat <V> <E> <seed> <out.bin>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto has_flag = [&](const char* flag) {
      return argc == 3 && (std::string(argv[1]) == flag ||
                           std::string(argv[2]) == flag);
    };
    if (argc == 6 && std::string(argv[1]) == "--rmat") {
      return make_rmat(argv[2], argv[3], argv[4], argv[5]);
    }
    if (has_flag("--upgrade")) {
      return upgrade(argv[1][0] == '-' ? argv[2] : argv[1]);
    }
    if (has_flag("--info") || has_flag("--stats")) {
      const bool stats = has_flag("--stats");
      const char* input = argv[1][0] == '-' ? argv[2] : argv[1];
      const auto t0 = Clock::now();
      const auto g = pregel::graph::load_any(input);
      std::printf("loaded %s in %.1f ms\n", input, ms_since(t0));
      print_info(input, g);
      if (stats) {
        print_snapshot_layout(input);
        print_stats(g);
      }
      return 0;
    }
    if (argc != 3) return usage();
    // Any other flag-looking argument is a mistake, not an output path.
    if (argv[1][0] == '-' || argv[2][0] == '-') return usage();

    const auto t_load = Clock::now();
    const auto g = pregel::graph::load_any(argv[1]);
    std::printf("loaded %s in %.1f ms\n", argv[1], ms_since(t_load));
    print_info("input", g);

    const auto t_save = Clock::now();
    pregel::graph::save_binary(g, argv[2]);
    std::printf("wrote snapshot %s in %.1f ms\n", argv[2], ms_since(t_save));

    // Paranoia that costs milliseconds: reload and compare checksums so a
    // bad disk or a format regression never produces a silently-wrong
    // snapshot.
    const auto t_verify = Clock::now();
    const auto back = pregel::graph::load_binary(argv[2]);
    if (back.checksum() != g.checksum()) {
      std::fprintf(stderr, "verification FAILED: reloaded checksum differs\n");
      return 1;
    }
    std::printf("verified round-trip in %.1f ms\n", ms_since(t_verify));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graph_convert: %s\n", e.what());
    return 1;
  }
}
