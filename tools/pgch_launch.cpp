// pgch_launch: run any example or bench binary as a multi-process worker
// team (docs/transport.md).
//
// The driver spawns N copies of the given command, one per rank, with the
// PGCH_* launch environment set (launch_config.hpp): PGCH_TRANSPORT=tcp,
// PGCH_RANK=r, PGCH_WORLD=N, PGCH_PORT_BASE, and optionally PGCH_HOSTS.
// Inside each process, core::launch() reads that environment, connects
// the socket mesh and runs only its own rank — so binaries written for
// the in-process simulator become distributed without a code change.
//
// Usage:
//   pgch_launch -n N [--transport tcp|inprocess] [--port-base P]
//               [--hosts h0[:p0],h1[:p1],...]
//               [--partition range|degree|hash] [--mmap]
//               [--max-restarts R] [--checkpoint-dir D]
//               [--checkpoint-every K] [--print-only]
//               -- command [args...]
//
//   pgch_launch -n 2 --transport tcp -- ./example_quickstart 2000 2
//
// --hosts names where each rank LISTENS; for a multi-host run, start the
// printed per-rank command on its own machine instead of letting this
// driver fork it (the driver always forks locally). --print-only prints
// the per-rank command lines and exits — the copy-paste recipe for
// multi-host runs.
//
// With --max-restarts R the driver is a supervisor (docs/
// fault_tolerance.md): when a rank dies it is respawned up to R times
// with PGCH_RESUME set (the committed epoch from the checkpoint dir's
// LATEST marker when --checkpoint-dir is given, else "auto"), and every
// rank runs with PGCH_RECOVERY_ATTEMPTS=R so survivors rejoin the mesh
// instead of exiting on the broken connection. PGCH_FAULT is cleared for
// respawned ranks — an injected fault fires once, not on every
// incarnation. Without restarts (the default), the first failure tears
// the team down and the failed rank's exit code becomes the driver's.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

struct Options {
  int world = 2;
  std::string transport = "tcp";
  int port_base = 29500;
  std::string hosts;      // comma-separated, may be empty
  std::string partition;  // PGCH_PARTITION for every rank, may be empty
  bool mmap = false;      // PGCH_MMAP=1 for every rank
  bool print_only = false;
  int max_restarts = 0;         // respawn budget across all ranks
  std::string checkpoint_dir;   // PGCH_CHECKPOINT_DIR, may be empty
  int checkpoint_every = 0;     // PGCH_CHECKPOINT_EVERY when > 0
  std::vector<char*> command;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "pgch_launch: %s\n", error);
  std::fprintf(stderr,
               "usage: %s -n N [--transport tcp|inprocess] [--port-base P]\n"
               "       [--hosts h0[:p0],h1[:p1],...] "
               "[--partition range|degree|hash]\n"
               "       [--mmap] [--max-restarts R] [--checkpoint-dir D]\n"
               "       [--checkpoint-every K] [--print-only] "
               "-- command [args...]\n",
               argv0);
  std::exit(error != nullptr ? 2 : 0);
}

Options parse(int argc, char** argv) {
  Options opts;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "-n" || arg == "--np" || arg == "--world") {
      opts.world = std::atoi(value());
    } else if (arg == "--transport") {
      opts.transport = value();
    } else if (arg == "--port-base") {
      opts.port_base = std::atoi(value());
    } else if (arg == "--hosts") {
      opts.hosts = value();
    } else if (arg == "--partition") {
      opts.partition = value();
    } else if (arg == "--mmap") {
      opts.mmap = true;
    } else if (arg == "--max-restarts") {
      opts.max_restarts = std::atoi(value());
    } else if (arg == "--checkpoint-dir") {
      opts.checkpoint_dir = value();
    } else if (arg == "--checkpoint-every") {
      opts.checkpoint_every = std::atoi(value());
    } else if (arg == "--print-only") {
      opts.print_only = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown option " + arg).c_str());
    }
  }
  for (; i < argc; ++i) opts.command.push_back(argv[i]);
  if (opts.command.empty()) usage(argv[0], "no command after --");
  if (opts.world <= 0) usage(argv[0], "-n must be >= 1");
  if (opts.max_restarts < 0) usage(argv[0], "--max-restarts must be >= 0");
  if (opts.transport != "tcp" && opts.transport != "inprocess") {
    usage(argv[0], "--transport must be tcp or inprocess");
  }
  if (!opts.partition.empty() && opts.partition != "range" &&
      opts.partition != "degree" && opts.partition != "hash") {
    usage(argv[0], "--partition must be range, degree or hash");
  }
  return opts;
}

/// The env assignments rank `rank` runs under, as a printable prefix.
std::string env_prefix(const Options& opts, int rank) {
  std::string s = "PGCH_TRANSPORT=" + opts.transport +
                  " PGCH_WORLD=" + std::to_string(opts.world);
  if (opts.transport == "tcp") {
    s += " PGCH_RANK=" + std::to_string(rank);
    s += " PGCH_PORT_BASE=" + std::to_string(opts.port_base);
    if (!opts.hosts.empty()) s += " PGCH_HOSTS=" + opts.hosts;
  }
  // Every rank must build the identical partition, so the selection rides
  // the launch environment like the transport does.
  if (!opts.partition.empty()) s += " PGCH_PARTITION=" + opts.partition;
  // Co-located ranks mapping the same v3 snapshot share one page-cache
  // copy of it — the zero-copy loader is what makes -n 8 on one host not
  // hold 8 heap copies of the graph.
  if (opts.mmap) s += " PGCH_MMAP=1";
  if (!opts.checkpoint_dir.empty()) {
    s += " PGCH_CHECKPOINT_DIR=" + opts.checkpoint_dir;
  }
  if (opts.checkpoint_every > 0) {
    s += " PGCH_CHECKPOINT_EVERY=" + std::to_string(opts.checkpoint_every);
  }
  if (opts.max_restarts > 0) {
    s += " PGCH_RECOVERY_ATTEMPTS=" + std::to_string(opts.max_restarts);
  }
  return s;
}

void print_commands(const Options& opts, int ranks) {
  for (int r = 0; r < ranks; ++r) {
    std::string line = env_prefix(opts, r);
    for (const char* part : opts.command) {
      line += ' ';
      line += part;
    }
    std::fprintf(stderr, "[pgch_launch] rank %d: %s\n", r, line.c_str());
  }
}

}  // namespace

#ifdef _WIN32

int main() {
  std::fprintf(stderr, "pgch_launch: process spawning requires POSIX\n");
  return 1;
}

#else

/// The PGCH_RESUME value for a respawned rank: the committed epoch from
/// the checkpoint dir's LATEST marker when we know the dir, else "auto"
/// (the rank walks its own checkpoint files and the team agrees on the
/// newest epoch everyone holds).
std::string resume_value(const Options& opts) {
  if (!opts.checkpoint_dir.empty()) {
    const std::string marker = opts.checkpoint_dir + "/LATEST";
    if (std::FILE* f = std::fopen(marker.c_str(), "rb")) {
      long long epoch = -1;
      const int n = std::fscanf(f, "%lld", &epoch);
      std::fclose(f);
      if (n == 1 && epoch > 0) return std::to_string(epoch);
    }
  }
  return "auto";
}

/// Fork rank `r`. `resume` marks a respawn after a failure: the child
/// resumes from the last committed checkpoint, and any injected fault is
/// cleared so it does not fire again in the new incarnation.
pid_t spawn_rank(const Options& opts, int r, bool resume) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Own process group, so teardown reaches the rank's descendants
    // too (e.g. a wrapper shell's children).
    setpgid(0, 0);
    setenv("PGCH_TRANSPORT", opts.transport.c_str(), 1);
    setenv("PGCH_WORLD", std::to_string(opts.world).c_str(), 1);
    if (opts.transport == "tcp") {
      setenv("PGCH_RANK", std::to_string(r).c_str(), 1);
      setenv("PGCH_PORT_BASE", std::to_string(opts.port_base).c_str(), 1);
      if (!opts.hosts.empty()) setenv("PGCH_HOSTS", opts.hosts.c_str(), 1);
    }
    if (!opts.partition.empty()) {
      setenv("PGCH_PARTITION", opts.partition.c_str(), 1);
    }
    if (opts.mmap) setenv("PGCH_MMAP", "1", 1);
    if (!opts.checkpoint_dir.empty()) {
      setenv("PGCH_CHECKPOINT_DIR", opts.checkpoint_dir.c_str(), 1);
    }
    if (opts.checkpoint_every > 0) {
      setenv("PGCH_CHECKPOINT_EVERY",
             std::to_string(opts.checkpoint_every).c_str(), 1);
    }
    if (opts.max_restarts > 0) {
      setenv("PGCH_RECOVERY_ATTEMPTS",
             std::to_string(opts.max_restarts).c_str(), 1);
    }
    if (resume) {
      setenv("PGCH_RESUME", resume_value(opts).c_str(), 1);
      unsetenv("PGCH_FAULT");
    }
    std::vector<char*> args = opts.command;
    args.push_back(nullptr);
    execvp(args[0], args.data());
    std::fprintf(stderr, "pgch_launch: exec %s: %s\n", args[0],
                 std::strerror(errno));
    _exit(127);
  }
  if (pid > 0) setpgid(pid, pid);  // mirror the child's call; one wins
  return pid;
}

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  // In-process mode needs no peers: one child, worker threads inside it.
  const int ranks = opts.transport == "tcp" ? opts.world : 1;
  print_commands(opts, ranks);
  if (opts.print_only) return 0;

  // children[r] is rank r's live pid, or -1 once reaped.
  std::vector<pid_t> children(static_cast<std::size_t>(ranks), -1);
  for (int r = 0; r < ranks; ++r) {
    const pid_t pid = spawn_rank(opts, r, /*resume=*/false);
    if (pid < 0) {
      std::perror("pgch_launch: fork");
      for (const pid_t c : children) {
        if (c > 0) kill(c, SIGTERM);
      }
      return 1;
    }
    children[static_cast<std::size_t>(r)] = pid;
  }

  // Supervise the team. A clean exit retires its rank; a failure either
  // consumes a restart (the rank respawns and resumes from the last
  // committed checkpoint while survivors rejoin the mesh in-process) or
  // tears the rest down (a vanished peer would otherwise leave survivors
  // blocked in a collective). Reaped ranks are dropped from the list
  // first — their pids may already belong to someone else.
  int exit_code = 0;
  int restarts_left = opts.max_restarts;
  std::size_t running = children.size();
  while (running > 0) {
    int status = 0;
    const pid_t pid = wait(&status);
    if (pid < 0) break;
    int rank = -1;
    for (std::size_t r = 0; r < children.size(); ++r) {
      if (children[r] == pid) {
        children[r] = -1;
        rank = static_cast<int>(r);
      }
    }
    if (rank < 0) continue;  // not ours (reparented grandchild)
    const bool failed = !WIFEXITED(status) || WEXITSTATUS(status) != 0;
    if (!failed) {
      --running;
      continue;
    }
    const int code =
        WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr, "pgch_launch: rank %d killed by signal %d (%s)\n",
                   rank, WTERMSIG(status), strsignal(WTERMSIG(status)));
    } else {
      std::fprintf(stderr, "pgch_launch: rank %d exited with code %d\n",
                   rank, WEXITSTATUS(status));
    }
    if (exit_code == 0 && restarts_left > 0) {
      --restarts_left;
      std::fprintf(stderr,
                   "pgch_launch: respawning rank %d (PGCH_RESUME=%s, "
                   "%d restart(s) left)\n",
                   rank, resume_value(opts).c_str(), restarts_left);
      const pid_t respawned = spawn_rank(opts, rank, /*resume=*/true);
      if (respawned > 0) {
        children[static_cast<std::size_t>(rank)] = respawned;
        continue;  // running count unchanged: the rank lives again
      }
      std::perror("pgch_launch: fork (respawn)");
    }
    if (exit_code == 0) {
      exit_code = code;
      for (const pid_t c : children) {
        if (c > 0) kill(-c, SIGTERM);  // the rank's whole process group
      }
    }
    --running;
  }
  if (exit_code != 0) {
    std::fprintf(stderr, "pgch_launch: a rank failed (exit %d)\n", exit_code);
  }
  return exit_code;
}

#endif
