// Table V (top): the scatter-combine channel on PageRank.
//
// Paper rows (runtime s / message GB on Wikipedia and WebUK):
//   pregel+(basic)    47.32 / 14.02    212.24 / 63.23
//   pregel+(ghost)    45.55 /  4.70    246.41 / 23.69
//   channel (basic)   40.36 / 14.02    205.80 / 63.23
//   channel (scatter) 15.58 /  9.50     67.00 / 42.86
//
// Expected shape: channel(basic) ~ pregel+(basic) in both time and bytes;
// ghost reduces bytes but not time; scatter ~3x faster with ~1/3 fewer
// bytes (identifier removal after the handshake).

#include <benchmark/benchmark.h>

#include "algorithms/pagerank.hpp"
#include "algorithms/pp_simple.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

PGCH_CACHED_DG(wikipedia, bench::hash_dg(bench::wikipedia_graph()))
PGCH_CACHED_DG(webuk, bench::hash_dg(bench::webuk_graph()))

constexpr int kIterations = 30;  // the paper's 30 PageRank supersteps

template <typename WorkerT>
void pagerank_case(benchmark::State& state, const char* name,
                   const bench::DistributedGraph& dg) {
  bench::run_case<WorkerT>(state, name, dg, [](WorkerT& w) {
    w.iterations = kIterations;
  });
}

void PR_Wikipedia_PregelBasic(benchmark::State& s) {
  pagerank_case<algo::PPPageRank>(s, __func__, wikipedia());
}
void PR_Wikipedia_PregelGhost(benchmark::State& s) {
  pagerank_case<algo::PPPageRankGhost>(s, __func__, wikipedia());
}
void PR_Wikipedia_ChannelBasic(benchmark::State& s) {
  pagerank_case<algo::PageRankCombined>(s, __func__, wikipedia());
}
void PR_Wikipedia_ChannelScatter(benchmark::State& s) {
  pagerank_case<algo::PageRankScatter>(s, __func__, wikipedia());
}
void PR_WebUK_PregelBasic(benchmark::State& s) {
  pagerank_case<algo::PPPageRank>(s, __func__, webuk());
}
void PR_WebUK_PregelGhost(benchmark::State& s) {
  pagerank_case<algo::PPPageRankGhost>(s, __func__, webuk());
}
void PR_WebUK_ChannelBasic(benchmark::State& s) {
  pagerank_case<algo::PageRankCombined>(s, __func__, webuk());
}
void PR_WebUK_ChannelScatter(benchmark::State& s) {
  pagerank_case<algo::PageRankScatter>(s, __func__, webuk());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(PR_Wikipedia_PregelBasic);
PGCH_BENCH(PR_Wikipedia_PregelGhost);
PGCH_BENCH(PR_Wikipedia_ChannelBasic);
PGCH_BENCH(PR_Wikipedia_ChannelScatter);
PGCH_BENCH(PR_WebUK_PregelBasic);
PGCH_BENCH(PR_WebUK_PregelGhost);
PGCH_BENCH(PR_WebUK_ChannelBasic);
PGCH_BENCH(PR_WebUK_ChannelScatter);

}  // namespace

PGCH_BENCH_MAIN()
