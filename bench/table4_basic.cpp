// Table IV: straightforward rewriting — Pregel+ basic implementations vs
// their channel-based ports, across all six evaluation algorithms.
//
// Paper rows (runtime s / message GB, pregel -> channel):
//   PR  : WebUK 212.24/63.23 -> 205.80/63.23; Wikipedia 47.32/14.02 -> 40.36/14.02
//   WCC : Wikipedia 16.96/2.85 -> 15.67/2.85; Wikipedia (P) 15.31/0.49 -> 15.85/0.49
//   PJ  : Chain 111.54/39.99 -> 69.63/39.99;  Tree 36.25/8.56 -> 19.94/8.56
//   S-V : Facebook 49.74/16.41 -> 37.92/11.46; Twitter 382.60/112.21 -> 144.99/20.32
//   MSF : USA 27.05/8.67 -> 16.13/4.86;       RMAT24 50.56/14.80 -> 45.94/12.91
//   SCC : Wikipedia 52.15/9.85 -> 61.89/4.98; Wikipedia (P) 50.51/2.70 -> 67.84/1.29
//
// Expected shape: channel wins or ties everywhere except SCC (channel
// round overhead over ~10^3 sparse supersteps); big byte reductions for
// S-V / MSF / SCC (per-channel combiners + per-channel message types).

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "algorithms/msf.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pointer_jumping.hpp"
#include "algorithms/pp_msf.hpp"
#include "algorithms/pp_scc.hpp"
#include "algorithms/pp_simple.hpp"
#include "algorithms/pp_sv.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/sv.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

PGCH_CACHED_DG(webuk, bench::hash_dg(bench::webuk_graph()))
PGCH_CACHED_DG(wikipedia, bench::hash_dg(bench::wikipedia_graph()))
PGCH_CACHED_DG(chain, bench::hash_dg(bench::chain_graph()))
PGCH_CACHED_DG(tree, bench::hash_dg(bench::tree_graph()))
PGCH_CACHED_DG(facebook, bench::hash_dg(bench::facebook_graph()))
PGCH_CACHED_DG(twitter, bench::hash_dg(bench::twitter_graph()))
PGCH_CACHED_DG(usa, bench::hash_dg(bench::usa_graph()))
PGCH_CACHED_DG(rmat24, bench::hash_dg(bench::rmat24_graph()))

const bench::CsrGraph& wiki_sym() {
  static const bench::CsrGraph g = bench::symmetrized(bench::wikipedia_graph());
  return g;
}
const bench::CsrGraph& wiki_bi() {
  static const bench::CsrGraph g =
      algo::make_bidirected(bench::wikipedia_scc_graph());
  return g;
}

PGCH_CACHED_DG(wiki_sym_hash, bench::hash_dg(wiki_sym()))
PGCH_CACHED_DG(wiki_sym_part, bench::voronoi_dg(wiki_sym()))
PGCH_CACHED_DG(wiki_bi_hash, bench::hash_dg(wiki_bi()))
PGCH_CACHED_DG(wiki_bi_part, bench::voronoi_dg(wiki_bi()))

// --------------------------------------------------------------- PR -------
void PR_WebUK_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPPageRank>(s, __func__, webuk());
}
void PR_WebUK_Channel(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, webuk());
}
void PR_Wikipedia_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPPageRank>(s, __func__, wikipedia());
}
void PR_Wikipedia_Channel(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, wikipedia());
}

// Direction-optimized rows (DESIGN.md section 9): PageRank's frontier is
// all-dense every superstep, so adaptive mode runs the whole job in pull
// direction — zero channel payload for rank-local edges, one compact
// boundary exchange for the rest.
void adaptive(algo::PageRankCombined& w) {
  w.set_direction_mode(core::DirectionMode::kAdaptive);
}
void PR_WebUK_ChannelAdaptive(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, webuk(), adaptive);
}
void PR_Wikipedia_ChannelAdaptive(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, wikipedia(), adaptive);
}

// ---- snapshot-load rows (zero-copy loading, DESIGN.md section 5) ---------
// One v3 snapshot of the WebUK stand-in, written once per binary into the
// temp directory. The Heap row re-reads it into owned arrays each
// iteration; the Mmap row re-maps it with the page cache and the
// verify-once checksum cache warm — the steady state of a rank (re)start
// on a host that already holds the snapshot. The measured difference is
// exactly the O(bytes) copy the zero-copy path deletes. Each row then
// runs the usual PageRank over its freshly loaded graph, so the JSON
// record carries the load_s/graph_bytes pair next to comparable run
// stats.

const std::string& webuk_snapshot() {
  static const std::string path = [] {
    const std::string p = (std::filesystem::temp_directory_path() /
                           "pgch_bench_webuk_v3.bin")
                              .string();
    pregel::graph::save_binary(bench::webuk_graph(), p);
    return p;
  }();
  return path;
}

void load_row(benchmark::State& s, const char* name, bool use_mmap) {
  const std::string& path = webuk_snapshot();
  const auto load = [&] {
    return use_mmap ? pregel::graph::load_binary_mmap(path)
                    : pregel::graph::load_binary(path);
  };
  (void)load();  // warm: page cache for both rows, verify cache for mmap
  double load_s = 0.0;
  pregel::runtime::RunStats last;
  for (auto _ : s) {
    const auto t0 = std::chrono::steady_clock::now();
    bench::CsrGraph g = load();
    load_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    s.SetIterationTime(load_s);
    bench::note_load_stats("webuk", load_s, bench::graph_bytes(g));
    const bench::DistributedGraph dg(
        std::make_shared<const bench::CsrGraph>(std::move(g)),
        pregel::graph::hash_partition(bench::webuk_graph().num_vertices(),
                                      bench::num_workers()));
    last = algo::run_only<algo::PageRankCombined>(dg, nullptr);
  }
  s.counters["load_ms"] = load_s * 1e3;
  s.counters["msg_MB"] = last.message_mb();
  bench::record_json(name, last);
}
void PR_WebUK_HeapLoad(benchmark::State& s) {
  load_row(s, __func__, /*use_mmap=*/false);
}
void PR_WebUK_MmapLoad(benchmark::State& s) {
  load_row(s, __func__, /*use_mmap=*/true);
}

// ---- skew rows (DESIGN.md section 11) ------------------------------------
// PageRank on the unpermuted power-law graph, range vs degree partition
// and pinned vs stealing compute. The JSON rank_imbalance/slot_imbalance
// fields are the point of these rows: range partitioning leaves the hub
// ranges on one rank (high rank imbalance), degree partitioning flattens
// it; within a rank, stealing flattens the per-slot spread the hub chunks
// cause. Threads are pinned to 3 so the in-process and 2-rank TCP rows
// measure the same schedule.
PGCH_CACHED_DG(rmat_range, bench::range_dg(bench::rmat_skew_graph()))
PGCH_CACHED_DG(rmat_degree, bench::degree_dg(bench::rmat_skew_graph()))

void skew_pinned(algo::PageRankCombined& w) {
  w.set_compute_threads(3);
  w.set_steal(false);
}
void skew_steal(algo::PageRankCombined& w) {
  w.set_compute_threads(3);
  w.set_steal(true);
}
void PR_Rmat_Range(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, rmat_range(),
                                          skew_pinned);
}
void PR_Rmat_Degree(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, rmat_degree(),
                                          skew_pinned);
}
void PR_Rmat_RangeSteal(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, rmat_range(),
                                          skew_steal);
}
void PR_Rmat_DegreeSteal(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(s, __func__, rmat_degree(),
                                          skew_steal);
}

// --------------------------------------------------------------- WCC ------
void WCC_Wikipedia_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPWcc>(s, __func__, wiki_sym_hash());
}
void WCC_Wikipedia_Channel(benchmark::State& s) {
  bench::run_case<algo::WccBasic>(s, __func__, wiki_sym_hash());
}
void WCC_WikipediaP_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPWcc>(s, __func__, wiki_sym_part());
}
void WCC_WikipediaP_Channel(benchmark::State& s) {
  bench::run_case<algo::WccBasic>(s, __func__, wiki_sym_part());
}

// --------------------------------------------------------------- PJ -------
void PJ_Chain_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumping>(s, __func__, chain());
}
void PJ_Chain_Channel(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingBasic>(s, __func__, chain());
}
void PJ_Tree_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumping>(s, __func__, tree());
}
void PJ_Tree_Channel(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingBasic>(s, __func__, tree());
}

// --------------------------------------------------------------- S-V ------
void SV_Facebook_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPSv>(s, __func__, facebook());
}
void SV_Facebook_Channel(benchmark::State& s) {
  bench::run_case<algo::SvBasic>(s, __func__, facebook());
}
void SV_Twitter_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPSv>(s, __func__, twitter());
}
void SV_Twitter_Channel(benchmark::State& s) {
  bench::run_case<algo::SvBasic>(s, __func__, twitter());
}

// --------------------------------------------------------------- MSF ------
void MSF_USA_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPMsf>(s, __func__, usa());
}
void MSF_USA_Channel(benchmark::State& s) {
  bench::run_case<algo::MsfBoruvka>(s, __func__, usa());
}
void MSF_RMAT24_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPMsf>(s, __func__, rmat24());
}
void MSF_RMAT24_Channel(benchmark::State& s) {
  bench::run_case<algo::MsfBoruvka>(s, __func__, rmat24());
}

// --------------------------------------------------------------- SCC ------
void SCC_Wikipedia_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPScc>(s, __func__, wiki_bi_hash());
}
void SCC_Wikipedia_Channel(benchmark::State& s) {
  bench::run_case<algo::SccBasic>(s, __func__, wiki_bi_hash());
}
void SCC_WikipediaP_Pregel(benchmark::State& s) {
  bench::run_case<algo::PPScc>(s, __func__, wiki_bi_part());
}
void SCC_WikipediaP_Channel(benchmark::State& s) {
  bench::run_case<algo::SccBasic>(s, __func__, wiki_bi_part());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(PR_WebUK_Pregel);
PGCH_BENCH(PR_WebUK_Channel);
PGCH_BENCH(PR_Wikipedia_Pregel);
PGCH_BENCH(PR_Wikipedia_Channel);
PGCH_BENCH(PR_WebUK_ChannelAdaptive);
PGCH_BENCH(PR_Wikipedia_ChannelAdaptive);
PGCH_BENCH(PR_WebUK_HeapLoad);
PGCH_BENCH(PR_WebUK_MmapLoad);
PGCH_BENCH(PR_Rmat_Range);
PGCH_BENCH(PR_Rmat_Degree);
PGCH_BENCH(PR_Rmat_RangeSteal);
PGCH_BENCH(PR_Rmat_DegreeSteal);
PGCH_BENCH(WCC_Wikipedia_Pregel);
PGCH_BENCH(WCC_Wikipedia_Channel);
PGCH_BENCH(WCC_WikipediaP_Pregel);
PGCH_BENCH(WCC_WikipediaP_Channel);
PGCH_BENCH(PJ_Chain_Pregel);
PGCH_BENCH(PJ_Chain_Channel);
PGCH_BENCH(PJ_Tree_Pregel);
PGCH_BENCH(PJ_Tree_Channel);
PGCH_BENCH(SV_Facebook_Pregel);
PGCH_BENCH(SV_Facebook_Channel);
PGCH_BENCH(SV_Twitter_Pregel);
PGCH_BENCH(SV_Twitter_Channel);
PGCH_BENCH(MSF_USA_Pregel);
PGCH_BENCH(MSF_USA_Channel);
PGCH_BENCH(MSF_RMAT24_Pregel);
PGCH_BENCH(MSF_RMAT24_Channel);
PGCH_BENCH(SCC_Wikipedia_Pregel);
PGCH_BENCH(SCC_Wikipedia_Channel);
PGCH_BENCH(SCC_WikipediaP_Pregel);
PGCH_BENCH(SCC_WikipediaP_Channel);

}  // namespace

PGCH_BENCH_MAIN()
