// Micro/ablation benches for the design choices DESIGN.md calls out:
//  * substrate costs (buffer serialization, exchange rounds),
//  * receiver-side combining via hash staging vs the scatter channel's
//    pre-sorted linear scan (the Section V-B1 analysis),
//  * the scatter handshake amortization (identifier shipping is a one-time
//    cost; steady-state supersteps transmit bare values),
//  * request deduplication under extreme skew (star graph),
//  * the locality partitioner's edge-cut vs hash placement.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/pointer_jumping.hpp"
#include "algorithms/sssp.hpp"
#include "bench_common.hpp"
#include "runtime/barrier.hpp"
#include "runtime/buffer.hpp"
#include "runtime/exchange.hpp"
#include "runtime/team.hpp"

namespace {

using namespace pregel;

// ---------------------------------------------------------- substrate -----

void Substrate_BufferWriteRead(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  runtime::Buffer buf;
  for (auto _ : state) {
    buf.clear();
    for (std::size_t i = 0; i < n; ++i) {
      buf.write<std::uint64_t>(i);
    }
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += buf.read<std::uint64_t>();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(std::uint64_t) * 2);
}
BENCHMARK(Substrate_BufferWriteRead)->Unit(benchmark::kMillisecond);

void Substrate_ExchangeRound(benchmark::State& state) {
  const int workers = bench::num_workers();
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    runtime::Barrier barrier(workers);
    runtime::BufferExchange ex(workers, barrier);
    runtime::WorkerTeam::run(workers, [&](int rank) {
      std::vector<std::byte> data(payload);
      for (int round = 0; round < 50; ++round) {
        for (int to = 0; to < workers; ++to) {
          ex.outbox(rank, to).write_bytes(data.data(), data.size());
        }
        ex.exchange(rank);
      }
    });
    benchmark::DoNotOptimize(ex.total_bytes());
  }
}
BENCHMARK(Substrate_ExchangeRound)
    ->Arg(1 << 10)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// --------------------------------- storage: CSR vs builder adjacency ------

/// Full neighbor scan (the inner loop of every compute phase) over the
/// same Wikipedia-sized graph in both representations. The builder's
/// adjacency-of-vectors chases one heap pointer per vertex — and after a
/// realistic load (edges arriving in file/generator order, not grouped by
/// source) its per-vertex blocks are scattered across the heap. The CSR
/// scan is a single linear pass over the packed edge array.
const bench::CsrGraph& scan_dataset(int which) {
  return which == 0 ? bench::wikipedia_graph() : bench::webuk_graph();
}

/// Rebuild a dataset in the builder form with the edge-arrival order a
/// loader actually sees: interleaved across sources, so per-vertex vector
/// reallocations scatter across the heap.
const pregel::graph::Graph& scan_builder(int which) {
  static pregel::graph::Graph cache[2];
  pregel::graph::Graph& b = cache[which];
  if (b.num_vertices() == 0) {
    const auto& csr = scan_dataset(which);
    std::vector<std::pair<pregel::graph::VertexId, pregel::graph::VertexId>>
        edges;
    edges.reserve(static_cast<std::size_t>(csr.num_edges()));
    for (pregel::graph::VertexId u = 0; u < csr.num_vertices(); ++u) {
      for (const auto v : csr.neighbors(u)) edges.emplace_back(u, v);
    }
    std::shuffle(edges.begin(), edges.end(), std::mt19937_64(12345));
    b = pregel::graph::Graph(csr.num_vertices());
    for (const auto& [u, v] : edges) b.add_edge(u, v);
  }
  return b;
}

void Storage_NeighborScan_Builder(benchmark::State& state) {
  const auto& g = scan_builder(static_cast<int>(state.range(0)));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (pregel::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
      for (const auto& e : g.out(u)) acc += e.dst;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
void Storage_NeighborScan_Csr(benchmark::State& state) {
  const auto& g = scan_dataset(static_cast<int>(state.range(0)));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (pregel::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
      for (const auto v : g.neighbors(u)) acc += v;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
// Arg 0: Wikipedia stand-in (1.3M edges); arg 1: WebUK stand-in (4.2M).
BENCHMARK(Storage_NeighborScan_Builder)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Storage_NeighborScan_Csr)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------- combining: hash vs linear scan ----

PGCH_CACHED_DG(wiki, bench::hash_dg(bench::wikipedia_graph()))

void Combining_HashStaging_PR5(benchmark::State& s) {
  bench::run_case<algo::PageRankCombined>(
      s, __func__, wiki(), [](algo::PageRankCombined& w) { w.iterations = 5; });
}
void Combining_LinearScan_PR5(benchmark::State& s) {
  bench::run_case<algo::PageRankScatter>(
      s, __func__, wiki(), [](algo::PageRankScatter& w) { w.iterations = 5; });
}
BENCHMARK(Combining_HashStaging_PR5)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(Combining_LinearScan_PR5)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// ------------------------------------------ scatter handshake amortization

/// Bytes per superstep for a short vs a long scatter run: the handshake
/// (destination indices) is paid once, so the long run's per-superstep
/// byte cost must drop markedly below the short run's.
void Scatter_HandshakeAmortization(benchmark::State& state) {
  const int iterations = static_cast<int>(state.range(0));
  double per_step_mb = 0.0;
  for (auto _ : state) {
    const auto stats = algo::run_only<algo::PageRankScatter>(
        wiki(), [iterations](algo::PageRankScatter& w) {
          w.iterations = iterations;
        });
    state.SetIterationTime(stats.seconds);
    per_step_mb = stats.message_mb() / stats.supersteps;
  }
  state.counters["MB_per_superstep"] = per_step_mb;
}
BENCHMARK(Scatter_HandshakeAmortization)
    ->Arg(2)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// ----------------------------------------- request dedup on extreme skew --

PGCH_CACHED_DG(star, bench::hash_dg(
                         pregel::graph::star(bench::scaled(200'000)).finalize()))

void Skew_Star_AskReply(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingBasic>(s, __func__, star());
}
void Skew_Star_RequestRespond(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingReqResp>(s, __func__, star());
}
BENCHMARK(Skew_Star_AskReply)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(Skew_Star_RequestRespond)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// -------------------------------- extension: mirror vs scatter broadcast --

/// Sender-centric (mirror) vs receiver-centric (scatter) combining on the
/// same static PageRank broadcast: mirroring ships one value per (vertex,
/// worker), scatter one per (worker, unique destination).
void Broadcast_ScatterCombine_PR(benchmark::State& s) {
  bench::run_case<algo::PageRankScatter>(
      s, __func__, wiki(), [](algo::PageRankScatter& w) { w.iterations = 10; });
}
void Broadcast_MirrorScatter_PR(benchmark::State& s) {
  bench::run_case<algo::PageRankMirror>(
      s, __func__, wiki(), [](algo::PageRankMirror& w) { w.iterations = 10; });
}
BENCHMARK(Broadcast_ScatterCombine_PR)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(Broadcast_MirrorScatter_PR)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// ------------------------- extension: weighted propagation on SSSP --------

/// The weighted propagation channel collapses SSSP's O(diameter)
/// supersteps into one communication phase — most visible on the
/// high-diameter road network.
PGCH_CACHED_DG(road, bench::hash_dg(bench::usa_graph()))

void Sssp_MessagePassing_Road(benchmark::State& s) {
  bench::run_case<algo::Sssp>(s, __func__, road(),
                              [](algo::Sssp& w) { w.source = 0; });
}
void Sssp_PropagationW_Road(benchmark::State& s) {
  bench::run_case<algo::SsspPropagation>(
      s, __func__, road(), [](algo::SsspPropagation& w) { w.source = 0; });
}
BENCHMARK(Sssp_MessagePassing_Road)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(Sssp_PropagationW_Road)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// ------------------- frontier: sparse-superstep scan cost (DESIGN.md §6) --

/// SSSP on the grid-road stand-in drives the classic sparse frontier: a
/// relaxation wavefront touching a sliver of V each superstep. Capture
/// rank 0's real per-superstep frontiers from an instrumented run, then
/// time the two iteration strategies the engine switches between: the
/// pre-SoA full linear scan (every superstep pays O(V) regardless of how
/// few vertices are active) vs the ActiveSet word-scan (O(active)).
/// Args 0/1 pick a small/large grid: FullScan time grows with V, WordScan
/// tracks the frontier and stays put — sparse supersteps no longer scale
/// with total V.

struct FrontierCapture {
  std::uint32_t num_local = 0;  ///< rank 0's slice size (the scan's V)
  std::vector<std::vector<std::uint32_t>> frontiers;  ///< per superstep
  std::uint64_t active_total = 0;
};

class SsspFrontierProbe : public algo::Sssp {
 public:
  static inline std::vector<std::vector<std::uint32_t>>* sink = nullptr;
  void begin_superstep() override {
    if (rank() == 0) {
      sink->emplace_back(frontier().begin(), frontier().end());
    }
  }
};

const FrontierCapture& road_frontiers(int which) {
  static FrontierCapture caps[2];
  FrontierCapture& cap = caps[which];
  if (cap.frontiers.empty()) {
    const std::uint32_t side = which == 0 ? bench::scaled(150)
                                          : bench::scaled(300);
    // No shortcut edges: a pure grid keeps the wavefront O(side) wide, so
    // the frontier is a thin sliver of V — the regime this bench measures.
    auto dg = bench::hash_dg(
        pregel::graph::grid_road(side, side, /*extra_edges=*/0, 106)
            .finalize());
    SsspFrontierProbe::sink = &cap.frontiers;
    algo::run_only<SsspFrontierProbe>(
        dg, [](SsspFrontierProbe& w) { w.source = 0; });
    SsspFrontierProbe::sink = nullptr;
    cap.num_local = dg.num_local(0);
    for (const auto& f : cap.frontiers) cap.active_total += f.size();
  }
  return cap;
}

std::vector<runtime::ActiveSet> frontier_sets(const FrontierCapture& cap) {
  std::vector<runtime::ActiveSet> sets;
  sets.reserve(cap.frontiers.size());
  for (const auto& f : cap.frontiers) {
    runtime::ActiveSet s(cap.num_local, /*value=*/false);
    for (const std::uint32_t lidx : f) s.set(lidx);
    sets.push_back(std::move(s));
  }
  return sets;
}

void report_frontier_counters(benchmark::State& state,
                              const FrontierCapture& cap) {
  state.counters["supersteps"] = static_cast<double>(cap.frontiers.size());
  state.counters["active_ratio"] =
      cap.frontiers.empty()
          ? 0.0
          : static_cast<double>(cap.active_total) /
                (static_cast<double>(cap.num_local) *
                 static_cast<double>(cap.frontiers.size()));
  // One state iteration replays every superstep: items/s ~ supersteps/s,
  // i.e. the inverse of the per-superstep scan time.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cap.frontiers.size()));
}

void Frontier_SparseSuperstep_FullScan(benchmark::State& state) {
  const auto& cap = road_frontiers(static_cast<int>(state.range(0)));
  const auto sets = frontier_sets(cap);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (const auto& s : sets) {
      for (std::uint32_t lidx = 0; lidx < cap.num_local; ++lidx) {
        if (s.test(lidx)) acc += lidx;
      }
    }
  }
  benchmark::DoNotOptimize(acc);
  report_frontier_counters(state, cap);
}
void Frontier_SparseSuperstep_WordScan(benchmark::State& state) {
  const auto& cap = road_frontiers(static_cast<int>(state.range(0)));
  const auto sets = frontier_sets(cap);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (const auto& s : sets) {
      s.for_each_set([&](std::uint32_t lidx) { acc += lidx; });
    }
  }
  benchmark::DoNotOptimize(acc);
  report_frontier_counters(state, cap);
}
BENCHMARK(Frontier_SparseSuperstep_FullScan)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Frontier_SparseSuperstep_WordScan)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- partitioner edge cut ---

void Partition_EdgeCut(benchmark::State& state) {
  const auto& g = bench::wikipedia_graph();
  double hash_cut = 0.0, voronoi_cut = 0.0;
  for (auto _ : state) {
    const auto hash =
        pregel::graph::hash_partition(g.num_vertices(), bench::num_workers());
    pregel::graph::VoronoiOptions opts;
    opts.num_workers = bench::num_workers();
    const auto voronoi = pregel::graph::voronoi_partition(g, opts);
    hash_cut = hash.edge_cut(g);
    voronoi_cut = voronoi.edge_cut(g);
    benchmark::DoNotOptimize(voronoi.owner.data());
  }
  state.counters["hash_cut"] = hash_cut;
  state.counters["voronoi_cut"] = voronoi_cut;
}
BENCHMARK(Partition_EdgeCut)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

PGCH_BENCH_MAIN()
