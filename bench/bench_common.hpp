#pragma once
// Shared benchmark infrastructure: the paper-dataset stand-ins (Table III,
// scaled to this container — see DESIGN.md section 1) and the harness glue
// that reports each run the way the paper's tables do: wall seconds and
// message megabytes, plus superstep counts.
//
// Every dataset is built once per binary and cached. Worker count defaults
// to 4 (the paper's per-node slot count); override with PGCH_BENCH_WORKERS.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/runner.hpp"
#include "algorithms/scc.hpp"
#include "runtime/chunk.hpp"
#include "graph/csr.hpp"
#include "graph/distributed.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"

namespace bench {

using pregel::graph::CsrGraph;
using pregel::graph::DistributedGraph;
using pregel::graph::Graph;

/// Benchmarks default to the paper's link speed (750 Mbps ~ 90 MB/s) for
/// the simulated network (see runtime/exchange.hpp); tests leave it off.
/// Override with PGCH_SIM_NET_MBPS=<mbps> (0 disables).
inline const bool kNetDefaulted = [] {
#ifdef _WIN32
  return false;
#else
  setenv("PGCH_SIM_NET_MBPS", "90", /*overwrite=*/0);
  return true;
#endif
}();

inline int num_workers() {
  // A multi-process run (tools/pgch_launch sets PGCH_WORLD) dictates the
  // partition's worker count; PGCH_BENCH_WORKERS tunes in-process runs.
  const int world = pregel::core::LaunchConfig::from_env().world_size;
  if (world > 0) return world;
  if (const char* env = std::getenv("PGCH_BENCH_WORKERS")) {
    const int w = std::atoi(env);
    if (w > 0) return w;
  }
  return 4;
}

/// Scale factor for all datasets (1 = defaults below); override with
/// PGCH_BENCH_SCALE_SHIFT=-1/-2 to shrink for smoke runs.
inline int scale_shift() {
  if (const char* env = std::getenv("PGCH_BENCH_SCALE_SHIFT")) {
    return std::atoi(env);
  }
  return 0;
}

inline std::uint32_t scaled(std::uint32_t base) {
  const int s = scale_shift();
  return s >= 0 ? base << s : base >> (-s);
}

// ---- dataset stand-ins (cached per binary) --------------------------------
//
// Every dataset is a finalized CsrGraph. A real dataset can replace any
// stand-in without recompiling: set PGCH_DATASET_<NAME>=<path> (NAME in
// caps, e.g. PGCH_DATASET_WIKIPEDIA=/data/wiki.bin) to a binary snapshot
// or an edge-list text file (tools/graph_convert builds snapshots).

/// Symmetrize a finalized dataset (round-trips through the builder; done
/// once per binary at dataset-build time).
inline CsrGraph symmetrized(const CsrGraph& g) {
  return g.to_graph().symmetrized().finalize();
}

/// Resident bytes of a dataset's CSR arrays (what a heap load pays for
/// and an mmap load defers to page faults).
inline std::uint64_t graph_bytes(const CsrGraph& g) {
  return g.offsets().size_bytes() + g.dst_array().size_bytes() +
         g.weight_array().size_bytes();
}

/// How a dataset got into memory: seconds to load-or-generate it, and its
/// array footprint. Keyed by lowercase dataset token so record_json can
/// attach the numbers to every row benched on that dataset.
struct LoadStats {
  double load_s = 0.0;
  std::uint64_t graph_bytes = 0;
};

inline std::map<std::string, LoadStats>& load_stats_registry() {
  static std::map<std::string, LoadStats> registry;
  return registry;
}

inline std::string lowercased(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Record (or overwrite — load benches re-time the same dataset) how long
/// `dataset` took to materialize and how big it is.
inline void note_load_stats(const std::string& dataset, double load_s,
                            std::uint64_t bytes) {
  load_stats_registry()[lowercased(dataset)] = LoadStats{load_s, bytes};
}

/// Resolve dataset `name`: the PGCH_DATASET_<NAME> override when set
/// (loaded via graph::load_any), else the generated stand-in, finalized.
/// Datasets whose consumers require undirected input pass
/// `symmetrize_override` so a raw directed download gets the same
/// normalization the generated stand-in bakes in.
inline CsrGraph make_dataset(const std::string& name,
                             const std::function<Graph()>& generate,
                             bool symmetrize_override = false) {
  std::string env = "PGCH_DATASET_";
  for (const char c : name) {
    env += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto note = [&](const CsrGraph& g) {
    note_load_stats(
        name,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count(),
        graph_bytes(g));
  };
  if (const char* path = std::getenv(env.c_str())) {
    CsrGraph g = pregel::graph::load_any(path);
    if (symmetrize_override) g = symmetrized(g);
    note(g);
    return g;
  }
  CsrGraph g = generate().finalize();
  note(g);
  return g;
}

/// Wikipedia stand-in: skewed directed web-like graph.
inline const CsrGraph& wikipedia_graph() {
  static const CsrGraph g = make_dataset("wikipedia", [] {
    return pregel::graph::rmat({.num_vertices = scaled(1u << 17),
                                .num_edges = scaled(10u << 17),
                                .seed = 101});
  });
  return g;
}

/// WebUK stand-in: bigger, denser web crawl.
inline const CsrGraph& webuk_graph() {
  static const CsrGraph g = make_dataset("webuk", [] {
    return pregel::graph::rmat({.num_vertices = scaled(1u << 18),
                                .num_edges = scaled(16u << 18),
                                .seed = 102});
  });
  return g;
}

/// Facebook stand-in: sparse undirected social graph (avg deg ~3.1).
inline const CsrGraph& facebook_graph() {
  static const CsrGraph g = make_dataset(
      "facebook",
      [] { return pregel::graph::random_undirected(scaled(1u << 18), 3.1, 103); },
      /*symmetrize_override=*/true);
  return g;
}

/// Twitter stand-in: dense skewed undirected graph (avg deg ~48).
inline const CsrGraph& twitter_graph() {
  static const CsrGraph g = make_dataset(
      "twitter",
      [] {
        return pregel::graph::rmat_undirected({.num_vertices = scaled(1u << 16),
                                               .num_edges = scaled(24u << 16),
                                               .seed = 104});
      },
      /*symmetrize_override=*/true);
  return g;
}

/// Chain and random tree (pointer-jumping inputs).
inline const CsrGraph& chain_graph() {
  static const CsrGraph g = make_dataset(
      "chain", [] { return pregel::graph::chain(scaled(300'000)); });
  return g;
}
inline const CsrGraph& tree_graph() {
  static const CsrGraph g = make_dataset(
      "tree", [] { return pregel::graph::random_tree(scaled(300'000), 105); });
  return g;
}

/// USA-road stand-in: weighted mesh with shortcuts.
inline const CsrGraph& usa_graph() {
  static const CsrGraph g = make_dataset("usa", [] {
    return pregel::graph::grid_road(scaled(300), scaled(300), scaled(20'000),
                                    106);
  });
  return g;
}

/// Wikipedia stand-in for the SCC experiments: the plain R-MAT graph's
/// SCCs all have tiny diameter, so Min-Label converges in ~20 supersteps —
/// but the REAL Wikipedia takes the paper's SCC 1247 supersteps because
/// its large SCCs have long internal paths. We restore that regime by
/// overlaying directed cycles (length 256) on a shuffled vertex subset:
/// label waves must walk the cycles, which is exactly the slow-convergence
/// behaviour Table VII's propagation channel eliminates.
inline const CsrGraph& wikipedia_scc_graph() {
  static const CsrGraph g = make_dataset("wikipedia_scc", [] {
    const pregel::graph::VertexId core_n = scaled(1u << 16);
    constexpr std::uint32_t kCycleLen = 192;
    const pregel::graph::VertexId cycle_n = scaled(1u << 15);
    Graph base = pregel::graph::rmat({.num_vertices = core_n,
                                      .num_edges = scaled(6u << 16),
                                      .seed = 108});
    // Append cycle-only vertices: each disjoint directed cycle is its own
    // SCC with diameter kCycleLen-1. One-way core->cycle edges attach them
    // to the graph without creating shortcuts through the core, so label
    // waves must walk the full cycle.
    std::mt19937_64 rng(109);
    std::uniform_int_distribution<pregel::graph::VertexId> core_pick(
        0, core_n - 1);
    for (pregel::graph::VertexId i = 0; i < cycle_n; ++i) base.add_vertex();
    for (pregel::graph::VertexId start = 0; start + kCycleLen <= cycle_n;
         start += kCycleLen) {
      for (std::uint32_t i = 0; i < kCycleLen; ++i) {
        base.add_edge(core_n + start + i,
                      core_n + start + (i + 1) % kCycleLen);
      }
      base.add_edge(core_pick(rng), core_n + start);  // one-way entry
    }
    return base;
  });
  return g;
}

/// Skew stand-in for the partitioner comparison: an R-MAT power-law graph
/// with permute_ids=false, so the hubs stay clustered at low vertex ids.
/// A contiguous range partition then hands rank 0 nearly all the edge
/// work, which is exactly the regime degree_partition (and PGCH_STEAL)
/// exist to fix — with the default permutation the skew averages out
/// across ranges and the comparison shows nothing.
inline const CsrGraph& rmat_skew_graph() {
  static const CsrGraph g = make_dataset("rmat_skew", [] {
    return pregel::graph::rmat({.num_vertices = scaled(1u << 16),
                                .num_edges = scaled(16u << 16),
                                .seed = 110,
                                .permute_ids = false});
  });
  return g;
}

/// RMAT24 stand-in: weighted skewed graph, symmetrized for MSF.
inline const CsrGraph& rmat24_graph() {
  static const CsrGraph g = make_dataset(
      "rmat24",
      [] {
        return pregel::graph::rmat({.num_vertices = scaled(1u << 16),
                                    .num_edges = scaled(16u << 16),
                                    .seed = 107,
                                    .weighted = true,
                                    .max_weight = 10'000})
            .symmetrized();
      },
      /*symmetrize_override=*/true);
  return g;
}

// ---- distributed views ----------------------------------------------------

/// Touch every slice page so the first program benched on a dataset is not
/// charged the page-in cost of the lazily-built shared graph.
inline DistributedGraph warmed(DistributedGraph dg) {
  std::uint64_t checksum = 0;
  for (int rank = 0; rank < dg.num_workers(); ++rank) {
    for (std::uint32_t l = 0; l < dg.num_local(rank); ++l) {
      for (const auto& e : dg.out(rank, l)) checksum += e.dst;
    }
  }
  benchmark::DoNotOptimize(checksum);
  return dg;
}

/// Non-owning shared_ptr to a cached dataset: every dataset here is a
/// function-local static, so its lifetime outlives all DistributedGraphs
/// and the arrays need not be copied per view.
inline std::shared_ptr<const CsrGraph> shared(const CsrGraph& g) {
  return {std::shared_ptr<const CsrGraph>(), &g};
}

inline DistributedGraph hash_dg(const CsrGraph& g) {
  return warmed(DistributedGraph(
      shared(g),
      pregel::graph::hash_partition(g.num_vertices(), num_workers())));
}

/// Rvalue form for one-off graphs built inline: takes ownership (the
/// non-owning `shared()` path would dangle on a temporary).
inline DistributedGraph hash_dg(CsrGraph&& g) {
  auto owned = std::make_shared<const CsrGraph>(std::move(g));
  return warmed(DistributedGraph(
      owned,
      pregel::graph::hash_partition(owned->num_vertices(), num_workers())));
}

inline DistributedGraph range_dg(const CsrGraph& g) {
  return warmed(DistributedGraph(
      shared(g),
      pregel::graph::range_partition(g.num_vertices(), num_workers())));
}

inline DistributedGraph degree_dg(const CsrGraph& g) {
  return warmed(DistributedGraph(
      shared(g), pregel::graph::degree_partition(g, num_workers())));
}

/// Partitioner selected by PGCH_PARTITION (hash when unset) — the view
/// multi-process benches use so every rank of a `pgch_launch --partition`
/// team builds the identical partition.
inline DistributedGraph env_partition_dg(const CsrGraph& g) {
  const auto kind = pregel::graph::partition_kind_from_env(
      pregel::graph::PartitionKind::kHash);
  return warmed(DistributedGraph(
      shared(g), pregel::graph::make_partition(g, num_workers(), kind)));
}

inline DistributedGraph voronoi_dg(const CsrGraph& g) {
  pregel::graph::VoronoiOptions opts;
  opts.num_workers = num_workers();
  return warmed(
      DistributedGraph(shared(g), pregel::graph::voronoi_partition(g, opts)));
}

inline DistributedGraph voronoi_dg(CsrGraph&& g) {
  auto owned = std::make_shared<const CsrGraph>(std::move(g));
  pregel::graph::VoronoiOptions opts;
  opts.num_workers = num_workers();
  return warmed(
      DistributedGraph(owned, pregel::graph::voronoi_partition(*owned, opts)));
}

/// Cached helper: build once, reuse across benchmark registrations.
#define PGCH_CACHED_DG(name, expr)                  \
  inline const bench::DistributedGraph& name() {    \
    static const bench::DistributedGraph dg = expr; \
    return dg;                                      \
  }

// ---- machine-readable results (PGCH_BENCH_JSON / --json) ------------------
//
// Every run_case() appends one JSON record per benchmark to the sink
// file, so the perf trajectory (BENCH_*.json) is populated by the same
// binaries the tables come from:
//   {"bench": "PR", "dataset": "Wikipedia", "name": ..., "wall_s": ...,
//    "msg_bytes": ..., "supersteps": ..., "comm_rounds": ...,
//    "serialize_s": ..., "exchange_s": ..., "deliver_s": ...,
//    "overlap_s": ..., "pipelined_rounds": ..., "chunks_sent": ...,
//    "chunks_received": ..., "rank_imbalance": ..., "slot_imbalance": ...,
//    "threads": ..., "comm_threads": ..., "transport": ...}
// In pipelined runs (PGCH_PIPELINE=1) exchange_s is the wire-active span,
// so serialize_s + exchange_s + deliver_s can exceed comm_s by up to
// overlap_s — the time the stream hid behind the wire.
// The path comes from --json=<path> (stripped before google-benchmark
// sees the argv) or the PGCH_BENCH_JSON environment variable; records are
// appended as JSON lines.

/// The sink path ("" = disabled). Set once at startup by PGCH_BENCH_MAIN.
inline std::string& json_sink_path() {
  static std::string path = [] {
    const char* env = std::getenv("PGCH_BENCH_JSON");
    return std::string(env != nullptr ? env : "");
  }();
  return path;
}

/// Consume a --json=<path> / --json <path> flag before google-benchmark
/// rejects it as unrecognized.
inline void init_json_sink(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_sink_path() = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      json_sink_path() = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Append one benchmark's record. Benchmark names follow the
/// <Bench>_<Dataset>_<Variant> convention; the first two tokens become
/// the bench/dataset fields (the full name ships too).
inline void record_json(const std::string& raw_name,
                        const pregel::runtime::RunStats& stats) {
  const std::string& path = json_sink_path();
  if (path.empty()) return;
  // Multi-process runs inherit PGCH_BENCH_JSON on every rank; only rank 0
  // records, so a 2-rank run appends one row, not two near-duplicates.
  if (pregel::core::LaunchConfig::from_env().rank > 0) return;
  // PGCH_PIPELINE=1 rows get their own name: the (bench, name) diff key
  // must not collide with the bulk row of the same benchmark.
  const std::string name =
      pregel::runtime::pipeline_from_env() ? raw_name + "_Pipelined"
                                           : raw_name;
  std::string bench = name, dataset;
  if (const auto cut = name.find('_'); cut != std::string::npos) {
    bench = name.substr(0, cut);
    dataset = name.substr(cut + 1);
    if (const auto cut2 = dataset.find('_'); cut2 != std::string::npos) {
      dataset = dataset.substr(0, cut2);
    }
  }
  const bool tcp = pregel::core::LaunchConfig::from_env().transport ==
                   pregel::runtime::TransportKind::kTcp;
  std::ostringstream os;
  os << "{\"bench\": \"" << bench << "\", \"dataset\": \"" << dataset
     << "\", \"name\": \"" << name << "\", \"wall_s\": " << stats.seconds
     << ", \"msg_bytes\": " << stats.message_bytes
     << ", \"supersteps\": " << stats.supersteps
     << ", \"pull_supersteps\": "
     << std::count(stats.direction_per_superstep.begin(),
                   stats.direction_per_superstep.end(), std::uint8_t{1})
     << ", \"comm_rounds\": " << stats.comm_rounds
     << ", \"compute_s\": " << stats.compute_seconds
     << ", \"comm_s\": " << stats.comm_seconds
     << ", \"serialize_s\": " << stats.serialize_seconds
     << ", \"exchange_s\": " << stats.exchange_seconds
     << ", \"deliver_s\": " << stats.deliver_seconds
     << ", \"overlap_s\": " << stats.overlap_seconds
     << ", \"pipelined_rounds\": " << stats.pipelined_rounds
     << ", \"chunks_sent\": " << stats.chunks_sent
     << ", \"chunks_received\": " << stats.chunks_received
     << ", \"rank_imbalance\": " << stats.rank_imbalance()
     << ", \"slot_imbalance\": " << stats.slot_imbalance()
     << ", \"threads\": " << pregel::runtime::compute_threads_from_env()
     << ", \"comm_threads\": " << pregel::runtime::comm_threads_from_env()
     << ", \"workers\": " << num_workers();
  // How the dataset got into memory (make_dataset, or a load bench's own
  // re-timing): seconds + array bytes ride every row of that dataset.
  const auto ls = load_stats_registry().find(lowercased(dataset));
  if (ls != load_stats_registry().end()) {
    os << ", \"load_s\": " << ls->second.load_s
       << ", \"graph_bytes\": " << ls->second.graph_bytes;
  }
  os << ", \"transport\": \"" << (tcp ? "tcp" : "inprocess") << "\"}";
  std::ofstream out(path, std::ios::app);
  out << os.str() << "\n";
}

// ---- harness glue ---------------------------------------------------------

/// Run one engine program and report it paper-style: manual wall time,
/// message MB and superstep count as counters (plus a JSON record when
/// the sink is configured). `name` is the benchmark's registered name —
/// call sites pass __func__ (benchmark::State has no name accessor in
/// the library version the image ships).
template <typename WorkerT>
void run_case(benchmark::State& state, const char* name,
              const DistributedGraph& dg,
              const std::function<void(WorkerT&)>& configure = nullptr) {
  double mb = 0.0;
  double steps = 0.0;
  pregel::runtime::RunStats last;
  for (auto _ : state) {
    const auto stats = pregel::algo::run_only<WorkerT>(dg, configure);
    state.SetIterationTime(stats.seconds);
    mb = stats.message_mb();
    steps = static_cast<double>(stats.supersteps);
    last = stats;
  }
  state.counters["msg_MB"] = mb;
  state.counters["supersteps"] = steps;
  record_json(name, last);
}

}  // namespace bench

/// Drop-in replacement for BENCHMARK_MAIN() that installs the JSON sink
/// (--json=<path>, stripped from argv) before google-benchmark parses it.
#define PGCH_BENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                       \
    bench::init_json_sink(&argc, argv);                                   \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    return 0;                                                             \
  }
