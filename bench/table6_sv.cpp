// Table VI: composing channels in the S-V algorithm — the paper's
// headline experiment.
//
// Paper rows (runtime s / message GB on Facebook and Twitter):
//   1-pregel+(reqresp)  35.67 / 6.33    182.93 / 19.66
//   2-channel (basic)   37.92 / 11.46   144.99 / 20.32
//   3-channel (reqresp) 26.83 / 5.45    138.44 / 16.76
//   4-channel (scatter) 33.21 / 9.09     87.52 / 13.34
//   5-channel (both)    22.29 / 3.08     79.76 / 9.78
//
// Expected shape: either optimized channel helps; which helps MORE
// depends on density (scatter wins on the dense Twitter stand-in,
// request-respond on the sparse Facebook stand-in); the composition
// (program 5) is fastest and lightest on both.

#include <benchmark/benchmark.h>

#include "algorithms/pp_sv.hpp"
#include "algorithms/sv.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

PGCH_CACHED_DG(facebook, bench::hash_dg(bench::facebook_graph()))
PGCH_CACHED_DG(twitter, bench::hash_dg(bench::twitter_graph()))

void SV_Facebook_1_PregelReqResp(benchmark::State& s) {
  bench::run_case<algo::PPSvReqResp>(s, __func__, facebook());
}
void SV_Facebook_2_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::SvBasic>(s, __func__, facebook());
}
void SV_Facebook_3_ChannelReqResp(benchmark::State& s) {
  bench::run_case<algo::SvReqResp>(s, __func__, facebook());
}
void SV_Facebook_4_ChannelScatter(benchmark::State& s) {
  bench::run_case<algo::SvScatter>(s, __func__, facebook());
}
void SV_Facebook_5_ChannelBoth(benchmark::State& s) {
  bench::run_case<algo::SvBoth>(s, __func__, facebook());
}
void SV_Twitter_1_PregelReqResp(benchmark::State& s) {
  bench::run_case<algo::PPSvReqResp>(s, __func__, twitter());
}
void SV_Twitter_2_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::SvBasic>(s, __func__, twitter());
}
void SV_Twitter_3_ChannelReqResp(benchmark::State& s) {
  bench::run_case<algo::SvReqResp>(s, __func__, twitter());
}
void SV_Twitter_4_ChannelScatter(benchmark::State& s) {
  bench::run_case<algo::SvScatter>(s, __func__, twitter());
}
void SV_Twitter_5_ChannelBoth(benchmark::State& s) {
  bench::run_case<algo::SvBoth>(s, __func__, twitter());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(SV_Facebook_1_PregelReqResp);
PGCH_BENCH(SV_Facebook_2_ChannelBasic);
PGCH_BENCH(SV_Facebook_3_ChannelReqResp);
PGCH_BENCH(SV_Facebook_4_ChannelScatter);
PGCH_BENCH(SV_Facebook_5_ChannelBoth);
PGCH_BENCH(SV_Twitter_1_PregelReqResp);
PGCH_BENCH(SV_Twitter_2_ChannelBasic);
PGCH_BENCH(SV_Twitter_3_ChannelReqResp);
PGCH_BENCH(SV_Twitter_4_ChannelScatter);
PGCH_BENCH(SV_Twitter_5_ChannelBoth);

}  // namespace

PGCH_BENCH_MAIN()
