// Table VII: the Min-Label SCC algorithm with and without the propagation
// channel, on the hash-partitioned and locality-partitioned Wikipedia
// stand-in.
//
// Paper rows (runtime s / message GB on Wikipedia and Wikipedia (P)):
//   1-pregel+(basic)  52.15 / 9.85    50.51 / 2.70
//   2-channel (basic) 61.89 / 4.98    67.84 / 1.29
//   3-channel (prop.) 31.37 / 4.42    13.96 / 1.12
//
// Expected shape: the channel basic version uses ~half the bytes (typed
// channels instead of the monolithic 16-byte message) but can be slightly
// SLOWER than Pregel+ (channel-round overhead across the many nearly-empty
// supersteps — the one case the paper reports a loss); the propagation
// version is ~2x faster unpartitioned and ~4x faster partitioned.

#include <benchmark/benchmark.h>

#include "algorithms/pp_scc.hpp"
#include "algorithms/scc.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

const bench::CsrGraph& wiki_bi() {
  static const bench::CsrGraph g =
      algo::make_bidirected(bench::wikipedia_scc_graph());
  return g;
}

PGCH_CACHED_DG(wiki_hash, bench::hash_dg(wiki_bi()))
PGCH_CACHED_DG(wiki_part, bench::voronoi_dg(wiki_bi()))

void SCC_Wikipedia_1_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPScc>(s, __func__, wiki_hash());
}
void SCC_Wikipedia_2_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::SccBasic>(s, __func__, wiki_hash());
}
void SCC_Wikipedia_3_ChannelProp(benchmark::State& s) {
  bench::run_case<algo::SccPropagation>(s, __func__, wiki_hash());
}
void SCC_WikipediaP_1_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPScc>(s, __func__, wiki_part());
}
void SCC_WikipediaP_2_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::SccBasic>(s, __func__, wiki_part());
}
void SCC_WikipediaP_3_ChannelProp(benchmark::State& s) {
  bench::run_case<algo::SccPropagation>(s, __func__, wiki_part());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(SCC_Wikipedia_1_PregelBasic);
PGCH_BENCH(SCC_Wikipedia_2_ChannelBasic);
PGCH_BENCH(SCC_Wikipedia_3_ChannelProp);
PGCH_BENCH(SCC_WikipediaP_1_PregelBasic);
PGCH_BENCH(SCC_WikipediaP_2_ChannelBasic);
PGCH_BENCH(SCC_WikipediaP_3_ChannelProp);

}  // namespace

PGCH_BENCH_MAIN()
