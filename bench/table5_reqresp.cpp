// Table V (middle): the request-respond channel on pointer jumping.
//
// Paper rows (runtime s / message GB on Tree and Chain):
//   pregel+(basic)     36.25 / 8.56    111.54 / 39.99
//   pregel+(reqresp)   54.37 / 2.62    676.19 / 28.87
//   channel (basic)    19.94 / 8.56     69.63 / 39.99
//   channel (reqresp)  11.03 / 1.75     74.10 / 19.24
//
// Expected shape: basic modes tie in bytes across systems; Pregel+'s
// reqresp mode cuts bytes but NOT time (the paper's surprising result);
// our reqresp channel posts the lowest byte count (~33% below Pregel+
// reqresp) and wins on the tree.

#include <benchmark/benchmark.h>

#include "algorithms/pointer_jumping.hpp"
#include "algorithms/pp_simple.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

PGCH_CACHED_DG(tree, bench::hash_dg(bench::tree_graph()))
PGCH_CACHED_DG(chain, bench::hash_dg(bench::chain_graph()))

void PJ_Tree_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumping>(s, __func__, tree());
}
void PJ_Tree_PregelReqResp(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumpingReqResp>(s, __func__, tree());
}
void PJ_Tree_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingBasic>(s, __func__, tree());
}
void PJ_Tree_ChannelReqResp(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingReqResp>(s, __func__, tree());
}
void PJ_Chain_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumping>(s, __func__, chain());
}
void PJ_Chain_PregelReqResp(benchmark::State& s) {
  bench::run_case<algo::PPPointerJumpingReqResp>(s, __func__, chain());
}
void PJ_Chain_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingBasic>(s, __func__, chain());
}
void PJ_Chain_ChannelReqResp(benchmark::State& s) {
  bench::run_case<algo::PointerJumpingReqResp>(s, __func__, chain());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(PJ_Tree_PregelBasic);
PGCH_BENCH(PJ_Tree_PregelReqResp);
PGCH_BENCH(PJ_Tree_ChannelBasic);
PGCH_BENCH(PJ_Tree_ChannelReqResp);
PGCH_BENCH(PJ_Chain_PregelBasic);
PGCH_BENCH(PJ_Chain_PregelReqResp);
PGCH_BENCH(PJ_Chain_ChannelBasic);
PGCH_BENCH(PJ_Chain_ChannelReqResp);

}  // namespace

PGCH_BENCH_MAIN()
