// Table V (bottom): the propagation channel on WCC (the HCC algorithm),
// on the hash-partitioned and on the locality-partitioned Wikipedia
// stand-in.
//
// Paper rows (runtime s / message GB on Wikipedia and Wikipedia (P)):
//   pregel+(basic)   16.96 / 2.85     15.31 / 0.49
//   blogel           20.39 / 1.11      5.10 / 0.11
//   channel (basic)  15.67 / 2.85     15.85 / 0.49
//   channel (prop.)   8.64 / 1.66      3.05 / 0.17
//
// Expected shape: partitioning alone does not speed up plain hashmin (it
// still needs O(diameter) supersteps); Blogel only shines on the
// partitioned graph; the propagation channel is fastest on both.

#include <benchmark/benchmark.h>

#include "algorithms/blogel_wcc.hpp"
#include "algorithms/pp_simple.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"

namespace {

using namespace pregel;

const bench::CsrGraph& wiki_sym() {
  static const bench::CsrGraph g = bench::symmetrized(bench::wikipedia_graph());
  return g;
}

PGCH_CACHED_DG(wiki_hash, bench::hash_dg(wiki_sym()))
PGCH_CACHED_DG(wiki_part, bench::voronoi_dg(wiki_sym()))

void WCC_Wikipedia_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPWcc>(s, __func__, wiki_hash());
}
void WCC_Wikipedia_Blogel(benchmark::State& s) {
  bench::run_case<algo::BlogelWcc>(s, __func__, wiki_hash());
}
void WCC_Wikipedia_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::WccBasic>(s, __func__, wiki_hash());
}
void WCC_Wikipedia_ChannelProp(benchmark::State& s) {
  bench::run_case<algo::WccPropagation>(s, __func__, wiki_hash());
}
void WCC_WikipediaP_PregelBasic(benchmark::State& s) {
  bench::run_case<algo::PPWcc>(s, __func__, wiki_part());
}
void WCC_WikipediaP_Blogel(benchmark::State& s) {
  bench::run_case<algo::BlogelWcc>(s, __func__, wiki_part());
}
void WCC_WikipediaP_ChannelBasic(benchmark::State& s) {
  bench::run_case<algo::WccBasic>(s, __func__, wiki_part());
}
void WCC_WikipediaP_ChannelProp(benchmark::State& s) {
  bench::run_case<algo::WccPropagation>(s, __func__, wiki_part());
}

#define PGCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1)

PGCH_BENCH(WCC_Wikipedia_PregelBasic);
PGCH_BENCH(WCC_Wikipedia_Blogel);
PGCH_BENCH(WCC_Wikipedia_ChannelBasic);
PGCH_BENCH(WCC_Wikipedia_ChannelProp);
PGCH_BENCH(WCC_WikipediaP_PregelBasic);
PGCH_BENCH(WCC_WikipediaP_Blogel);
PGCH_BENCH(WCC_WikipediaP_ChannelBasic);
PGCH_BENCH(WCC_WikipediaP_ChannelProp);

}  // namespace

PGCH_BENCH_MAIN()
